#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>

namespace vroom::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

const char* kind_name(MetricInfo::Kind kind) {
  switch (kind) {
    case MetricInfo::Kind::Counter: return "counter";
    case MetricInfo::Kind::Gauge: return "gauge";
    case MetricInfo::Kind::Histogram: return "histogram";
  }
  return "?";
}

// "deploy.macro.plt_us" -> "vroom_deploy_macro_plt_us".
std::string exposition_name(const std::string& name) {
  std::string out = "vroom_";
  for (const char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// Doubles in exports print with enough digits to round-trip exactly, minus
// trailing noise: %.17g keeps byte-stability tied to the value alone.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

bool valid_metric_name(std::string_view name) {
  int segments = 0;
  std::size_t seg_len = 0;
  for (const char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;
      ++segments;
      seg_len = 0;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
    ++seg_len;
  }
  if (seg_len == 0) return false;
  return segments + 1 >= 3;
}

// --- Histogram -------------------------------------------------------------

int Histogram::bucket_index(std::int64_t v) {
  if (v < 0) v = 0;
  if (v < kSubBuckets) return static_cast<int>(v);
  // v >= 2^kSubBits: octave e >= 1, kSubBuckets sub-buckets per octave.
  const int e =
      std::bit_width(static_cast<std::uint64_t>(v)) - kSubBits;  // >= 1
  const std::int64_t sub = (v >> (e - 1)) - kSubBuckets;         // [0, kSub)
  return static_cast<int>(static_cast<std::int64_t>(e) * kSubBuckets + sub);
}

std::int64_t Histogram::bucket_lower(int index) {
  if (index < kSubBuckets) return index;
  const int e = index / static_cast<int>(kSubBuckets);  // >= 1
  const std::int64_t sub = index % kSubBuckets;
  return (kSubBuckets + sub) << (e - 1);
}

std::int64_t Histogram::bucket_upper(int index) {
  if (index < kSubBuckets) return index + 1;
  const int e = index / static_cast<int>(kSubBuckets);
  // The very top bucket's upper bound is 2^63, which does not fit in int64;
  // compute unsigned and saturate so width math stays well-defined.
  const std::uint64_t upper = static_cast<std::uint64_t>(bucket_lower(index)) +
                              (std::uint64_t{1} << (e - 1));
  constexpr std::uint64_t kMax =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
  return upper > kMax ? std::numeric_limits<std::int64_t>::max()
                      : static_cast<std::int64_t>(upper);
}

void Histogram::record(std::int64_t v, std::int64_t count) {
  if (count <= 0) return;
  if (v < 0) v = 0;
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      count, std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(v * count, std::memory_order_relaxed);
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBucketCount; ++i) {
    const std::int64_t n = other.buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (n != 0) {
      buckets_[static_cast<std::size_t>(i)].fetch_add(
          n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

double Histogram::percentile(double p) const {
  const std::int64_t total = count();
  if (total <= 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // harness::percentile's rank convention over N sorted values.
  const double rank = p / 100.0 * static_cast<double>(total - 1);
  std::int64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::int64_t n =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (n == 0) continue;
    const double first = static_cast<double>(seen);
    seen += n;
    if (rank < static_cast<double>(seen) || seen == total) {
      // Interpolate uniformly across the bucket's rank span.
      const double frac =
          n > 1 ? (rank - first) / static_cast<double>(n - 1) : 0.5;
      const double lo = static_cast<double>(bucket_lower(i));
      const double hi = static_cast<double>(bucket_upper(i) - 1);
      const double clamped = frac < 0 ? 0 : (frac > 1 ? 1 : frac);
      return lo + (hi - lo) * clamped;
    }
  }
  return 0;  // unreachable for total > 0
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// --- Registry --------------------------------------------------------------

Registry::Entry& Registry::entry_for(std::string_view name, Plane plane,
                                     MetricInfo::Kind kind) {
  if (!valid_metric_name(name)) {
    std::fprintf(stderr,
                 "[obs] fatal: metric name \"%.*s\" violates "
                 "layer.subsystem.name (>=3 lowercase dot segments)\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.plane = plane;
    entry.kind = kind;
    switch (kind) {
      case MetricInfo::Kind::Counter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricInfo::Kind::Gauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricInfo::Kind::Histogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else if (it->second.kind != kind || it->second.plane != plane) {
    std::fprintf(stderr,
                 "[obs] fatal: metric \"%s\" re-registered as %s/%s "
                 "(was %s/%s)\n",
                 it->first.c_str(), kind_name(kind),
                 plane == Plane::Virtual ? "virtual" : "wall",
                 kind_name(it->second.kind),
                 it->second.plane == Plane::Virtual ? "virtual" : "wall");
    std::abort();
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name, Plane plane) {
  return *entry_for(name, plane, MetricInfo::Kind::Counter).counter;
}

Gauge& Registry::gauge(std::string_view name, Plane plane) {
  return *entry_for(name, plane, MetricInfo::Kind::Gauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, Plane plane) {
  return *entry_for(name, plane, MetricInfo::Kind::Histogram).histogram;
}

std::vector<MetricInfo> Registry::list(Plane plane) const {
  std::vector<MetricInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    if (entry.plane != plane) continue;
    MetricInfo info;
    info.name = name;
    info.plane = entry.plane;
    info.kind = entry.kind;
    info.counter = entry.counter.get();
    info.gauge = entry.gauge.get();
    info.histogram = entry.histogram.get();
    out.push_back(info);
  }
  return out;  // std::map iteration => already name-sorted
}

std::string Registry::to_csv(Plane plane) const {
  std::string out = "name,kind,count,sum,p50,p90,p99,p999,value\n";
  for (const MetricInfo& m : list(plane)) {
    out += m.name;
    out += ',';
    out += kind_name(m.kind);
    out += ',';
    if (m.kind == MetricInfo::Kind::Histogram) {
      const Histogram& h = *m.histogram;
      out += std::to_string(h.count());
      out += ',';
      out += std::to_string(h.sum());
      out += ',';
      append_double(out, h.percentile(50));
      out += ',';
      append_double(out, h.percentile(90));
      out += ',';
      append_double(out, h.percentile(99));
      out += ',';
      append_double(out, h.percentile(99.9));
      out += ",\n";
    } else {
      const std::int64_t v = m.kind == MetricInfo::Kind::Counter
                                 ? m.counter->value()
                                 : m.gauge->value();
      out += ",,,,,," + std::to_string(v) + "\n";
    }
  }
  return out;
}

std::string Registry::to_exposition(Plane plane) const {
  std::string out;
  for (const MetricInfo& m : list(plane)) {
    const std::string prom = exposition_name(m.name);
    out += "# TYPE " + prom + " ";
    out += kind_name(m.kind);
    out += '\n';
    if (m.kind == MetricInfo::Kind::Histogram) {
      const Histogram& h = *m.histogram;
      std::int64_t cum = 0;
      for (int i = 0; i < Histogram::kBucketCount; ++i) {
        const std::int64_t n = h.bucket_count(i);
        if (n == 0) continue;
        cum += n;
        out += prom + "_bucket{le=\"" +
               std::to_string(Histogram::bucket_upper(i) - 1) + "\"} " +
               std::to_string(cum) + "\n";
      }
      out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
      out += prom + "_sum " + std::to_string(h.sum()) + "\n";
      out += prom + "_count " + std::to_string(h.count()) + "\n";
    } else {
      const std::int64_t v = m.kind == MetricInfo::Kind::Counter
                                 ? m.counter->value()
                                 : m.gauge->value();
      out += prom + " " + std::to_string(v) + "\n";
    }
  }
  return out;
}

std::uint64_t Registry::digest(Plane plane) const {
  return fnv1a(to_exposition(plane));
}

bool Registry::export_to(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const auto write = [&](const std::string& path, const std::string& text) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(text.data(), static_cast<std::streamsize>(text.size()));
    if (!f) {
      std::fprintf(stderr, "[obs] warning: could not write \"%s\"\n",
                   path.c_str());
      return false;
    }
    return true;
  };
  bool ok = write(dir + "/metrics.csv", to_csv(Plane::Virtual));
  ok &= write(dir + "/metrics.prom", to_exposition(Plane::Virtual));
  ok &= write(dir + "/wall_sidecar.prom", to_exposition(Plane::Wall));
  return ok;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricInfo::Kind::Counter: entry.counter->reset(); break;
      case MetricInfo::Kind::Gauge: entry.gauge->reset(); break;
      case MetricInfo::Kind::Histogram: entry.histogram->reset(); break;
    }
  }
}

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: handles never die
  return *instance;
}

}  // namespace vroom::obs
