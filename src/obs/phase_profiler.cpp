#include "obs/phase_profiler.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

namespace vroom::obs {

namespace {

constexpr int kPhaseCount = static_cast<int>(Phase::kCount);

std::atomic<bool> g_profiling_enabled{false};

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread accumulator. Registered in a global list on first use;
// the destructor (thread exit) folds the remainder into the global
// aggregate so short-lived fleet workers are never lost.
struct ThreadTable {
  std::int64_t ns[kPhaseCount] = {};
  std::int64_t spans[kPhaseCount] = {};
  PhaseTimer* active = nullptr;  // innermost open span on this thread

  ThreadTable();
  ~ThreadTable();
};

struct GlobalState {
  std::mutex mu;
  PhaseProfile retired;               // contributions of exited threads
  std::vector<ThreadTable*> live;     // currently registered threads
};

GlobalState& global() {
  static GlobalState* state = new GlobalState();  // outlives thread dtors
  return *state;
}

thread_local ThreadTable t_table;
// Ensures the thread_local is constructed (and thus registered) before use.
ThreadTable& thread_table() { return t_table; }

ThreadTable::ThreadTable() {
  GlobalState& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.live.push_back(this);
}

ThreadTable::~ThreadTable() {
  GlobalState& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  for (int p = 0; p < kPhaseCount; ++p) {
    g.retired.seconds[p] += static_cast<double>(ns[p]) / 1e9;
    g.retired.spans[p] += spans[p];
  }
  for (std::size_t i = 0; i < g.live.size(); ++i) {
    if (g.live[i] == this) {
      g.live.erase(g.live.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::WorldBuild: return "world-build";
    case Phase::Intern: return "intern";
    case Phase::Sim: return "sim";
    case Phase::CacheLookup: return "cache-lookup";
    case Phase::CacheStore: return "cache-store";
    case Phase::TraceFlush: return "trace-flush";
    case Phase::Export: return "export";
    case Phase::kCount: break;
  }
  return "?";
}

bool profiling_enabled() {
  return g_profiling_enabled.load(std::memory_order_relaxed);
}

void set_profiling_enabled(bool on) {
  g_profiling_enabled.store(on, std::memory_order_relaxed);
}

PhaseTimer::PhaseTimer(Phase phase) : phase_(phase) {
  if (!profiling_enabled()) return;
  active_ = true;
  start_ns_ = now_ns();
  ThreadTable& table = thread_table();
  parent_ = table.active;
  table.active = this;
}

PhaseTimer::~PhaseTimer() {
  if (!active_) return;
  const std::int64_t elapsed = now_ns() - start_ns_;
  ThreadTable& table = thread_table();
  const int p = static_cast<int>(phase_);
  table.ns[p] += elapsed - child_ns_;  // self time only
  table.spans[p] += 1;
  table.active = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += elapsed;
}

double PhaseProfile::total_seconds() const {
  double total = 0;
  for (const double s : seconds) total += s;
  return total;
}

void PhaseProfile::merge(const PhaseProfile& other) {
  for (int p = 0; p < kPhaseCount; ++p) {
    seconds[p] += other.seconds[p];
    spans[p] += other.spans[p];
  }
}

PhaseProfile collect_phase_profile() {
  GlobalState& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  PhaseProfile out = g.retired;
  // Live threads (the calling thread, plus any pool that has not exited
  // yet) are read in place. Callers collect after joining their pool, so
  // cross-thread reads do not race with writes.
  for (const ThreadTable* table : g.live) {
    for (int p = 0; p < kPhaseCount; ++p) {
      out.seconds[p] += static_cast<double>(table->ns[p]) / 1e9;
      out.spans[p] += table->spans[p];
    }
  }
  return out;
}

void reset_phase_profile() {
  GlobalState& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.retired = PhaseProfile{};
  for (ThreadTable* table : g.live) {
    for (int p = 0; p < kPhaseCount; ++p) {
      table->ns[p] = 0;
      table->spans[p] = 0;
    }
  }
}

std::string format_phase_profile(const PhaseProfile& profile,
                                 double busy_seconds) {
  const double total = profile.total_seconds();
  std::string out = "[obs] phase profile (wall clock, all workers)\n";
  char line[128];
  std::snprintf(line, sizeof line, "  %-12s %10s %9s %7s\n", "phase",
                "seconds", "spans", "share");
  out += line;
  for (int p = 0; p < kPhaseCount; ++p) {
    if (profile.spans[p] == 0 && profile.seconds[p] == 0) continue;
    std::snprintf(line, sizeof line, "  %-12s %10.4f %9lld %6.1f%%\n",
                  phase_name(static_cast<Phase>(p)), profile.seconds[p],
                  static_cast<long long>(profile.spans[p]),
                  total > 0 ? 100.0 * profile.seconds[p] / total : 0.0);
    out += line;
  }
  std::snprintf(line, sizeof line, "  %-12s %10.4f\n", "total", total);
  out += line;
  if (busy_seconds > 0) {
    std::snprintf(line, sizeof line,
                  "  coverage: %.1f%% of %.4fs measured worker time\n",
                  100.0 * total / busy_seconds, busy_seconds);
    out += line;
  }
  return out;
}

}  // namespace vroom::obs
