// Wall-clock phase profiler (DESIGN.md §12): where does worker time go?
//
// `PhaseTimer` is an RAII span over one of a fixed set of harness phases
// (world-build, interning, sim, cache lookup/serialize, trace flush).
// Spans nest: a nested span's elapsed time is charged to the inner phase
// and subtracted from the outer one, so phase totals partition wall time
// instead of double counting. Each thread accumulates into a thread-local
// table (no contention on the hot path) that folds into a process-global
// aggregate when the thread exits or when collect_phase_profile() sweeps
// the live threads.
//
// Everything here is wall-clock and therefore nondeterministic: output goes
// to stderr (VROOM_PROFILE=1 prints the per-run table after each fleet
// run) and to the wall-plane metrics sidecar — never into frozen virtual
// -time artifacts. With profiling disabled (the default), a PhaseTimer is
// one relaxed bool load; the simulated world is identical either way.
//
// This library is environment-free; harness::Env owns the VROOM_PROFILE
// knob and the fleet / benches flip set_profiling_enabled from it.
#pragma once

#include <cstdint>
#include <string>

namespace vroom::obs {

enum class Phase : std::uint8_t {
  WorldBuild,      // per-load world: network, servers, pool, browser
  Intern,          // PageInstance realization incl. URL/domain interning
  Sim,             // event-loop execution of the load
  CacheLookup,     // result-cache probe (hash, read, verify, deserialize)
  CacheStore,      // result-cache serialize + atomic publish
  TraceFlush,      // recorder counter snapshot + Chrome-trace JSON write
  Export,          // metrics/manifest export at end of run
  kCount,
};

const char* phase_name(Phase phase);

// Process-global switch; off by default (a disabled PhaseTimer costs one
// relaxed atomic load and nothing else).
bool profiling_enabled();
void set_profiling_enabled(bool on);

class PhaseTimer {
 public:
  explicit PhaseTimer(Phase phase);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Phase phase_;
  bool active_ = false;
  std::int64_t start_ns_ = 0;
  std::int64_t child_ns_ = 0;   // time spent in nested spans
  PhaseTimer* parent_ = nullptr;
};

// Aggregated profile: self-time seconds and span counts per phase.
struct PhaseProfile {
  double seconds[static_cast<int>(Phase::kCount)] = {};
  std::int64_t spans[static_cast<int>(Phase::kCount)] = {};

  double total_seconds() const;
  void merge(const PhaseProfile& other);
};

// Folds every thread's table (exited threads' contributions plus a sweep of
// currently live ones) into one profile. Call after the worker pool joins.
PhaseProfile collect_phase_profile();

// Zeroes all accumulated phase time (process-global and live threads').
// The fleet calls this at the start of each profiled run so the printed
// table covers exactly that run.
void reset_phase_profile();

// Human-readable table. `busy_seconds` is the externally measured worker
// time the phases should explain (e.g. fleet Telemetry busy total); when
// > 0 a coverage line (profiled / measured) is appended.
std::string format_phase_profile(const PhaseProfile& profile,
                                 double busy_seconds);

}  // namespace vroom::obs
