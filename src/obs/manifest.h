// Run manifest (DESIGN.md §12): the machine-readable provenance record of a
// run — which knobs, strategies, and code version produced a number.
//
// A Manifest is an *ordered* flat map of string keys to string values
// ("env.jobs" -> "4", "cell.0.fingerprint" -> "...", "digest.metrics_prom"
// -> hex). Flat and ordered on purpose: serialization is a one-screen JSON
// object whose byte layout is a pure function of the entries, and the
// round-trip (write -> read) is exact, so a manifest can be diffed against
// a later reproduction attempt key by key.
//
// The fleet writes `manifest.json` and the deployment scenario
// `deploy_manifest.json` into the VROOM_METRICS directory; the entries
// include every harness::Env knob, per-cell strategy fingerprints, the
// result-cache salt version, and FNV digests of the exported metric
// snapshots — enough to reconstruct (or refuse to trust) any committed
// figure. Assembly happens at those call sites: this library is plain data
// and stays free of harness dependencies.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace vroom::obs {

class Manifest {
 public:
  // Appends (or overwrites, preserving position) `key` with `value`.
  void set(const std::string& key, std::string value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, std::uint64_t value);

  // First value stored under `key`, or nullptr.
  const std::string* find(const std::string& key) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  // One flat JSON object, entries in insertion order, fully escaped.
  std::string to_json() const;
  // Parses to_json() output (a flat string->string object). Returns
  // nullopt on malformed input. Exact round-trip: from_json(to_json())
  // reproduces the entries byte for byte.
  static std::optional<Manifest> from_json(const std::string& json);

  // Writes to_json() to `path` (parent directories created as needed);
  // warns on stderr and returns false on I/O failure.
  bool write(const std::string& path) const;
  static std::optional<Manifest> read(const std::string& path);

  bool operator==(const Manifest& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace vroom::obs
