#include "obs/manifest.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace vroom::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\r' ||
            text[pos] == '\t')) {
      ++pos;
    }
  }

  bool expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  // Parses a JSON string (cursor on the opening quote).
  bool string(std::string* out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) return false;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return false;
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              value |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // Manifests only ever escape control bytes; reject the rest.
          if (value > 0x7f) return false;
          out->push_back(static_cast<char>(value));
          break;
        }
        default: return false;
      }
    }
    return false;
  }
};

}  // namespace

void Manifest::set(const std::string& key, std::string value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(key, std::move(value));
}

void Manifest::set(const std::string& key, std::int64_t value) {
  set(key, std::to_string(value));
}

void Manifest::set(const std::string& key, std::uint64_t value) {
  set(key, std::to_string(value));
}

const std::string* Manifest::find(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Manifest::to_json() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out += "  \"" + json_escape(entries_[i].first) + "\": \"" +
           json_escape(entries_[i].second) + "\"";
    if (i + 1 < entries_.size()) out += ",";
    out += "\n";
  }
  out += "}\n";
  return out;
}

std::optional<Manifest> Manifest::from_json(const std::string& json) {
  Parser p{json};
  if (!p.expect('{')) return std::nullopt;
  Manifest m;
  if (p.peek('}')) {
    p.expect('}');
    return m;
  }
  while (true) {
    std::string key, value;
    if (!p.string(&key)) return std::nullopt;
    if (!p.expect(':')) return std::nullopt;
    if (!p.string(&value)) return std::nullopt;
    m.entries_.emplace_back(std::move(key), std::move(value));
    if (p.peek(',')) {
      p.expect(',');
      continue;
    }
    break;
  }
  if (!p.expect('}')) return std::nullopt;
  return m;
}

bool Manifest::write(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  const std::string text = to_json();
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!f) {
    std::fprintf(stderr, "[obs] warning: could not write manifest \"%s\"\n",
                 path.c_str());
    return false;
  }
  return true;
}

std::optional<Manifest> Manifest::read(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream buf;
  buf << f.rdbuf();
  return from_json(buf.str());
}

}  // namespace vroom::obs
