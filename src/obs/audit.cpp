#include "obs/audit.h"

#include <charconv>
#include <cstdio>
#include <map>

namespace vroom::obs {

namespace {

// Extracts the integer value of `"key":<n>` from a pre-rendered args_json
// fragment. Returns false when the key is absent or non-numeric.
bool arg_int(const std::string& args_json, const char* key,
             std::int64_t* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = args_json.find(needle);
  if (at == std::string::npos) return false;
  const char* begin = args_json.data() + at + needle.size();
  const char* end = args_json.data() + args_json.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc() || ptr == begin) return false;
  // The value must end at a JSON delimiter. `ptr != begin` alone accepted
  // partial parses — `"bytes":12.5` silently read as 12 — which violates the
  // strict whole-value contract in harness/env.cpp.
  if (ptr == end) return true;
  const char next = *ptr;
  return next == ',' || next == '}' || next == ']' || next == ' ';
}

std::string name_of(const std::vector<std::string>& track_names, int track) {
  if (track >= 0 && static_cast<std::size_t>(track) < track_names.size()) {
    return track_names[static_cast<std::size_t>(track)];
  }
  return "track" + std::to_string(track);
}

// Running per-origin state while scanning transmissions in emission order.
struct OriginState {
  std::int64_t count = 0;
  std::int64_t prev_enqueue = INT64_MIN;
  std::int64_t prev_end = INT64_MIN;
  std::int64_t first_start = INT64_MAX;
  std::int64_t last_end = INT64_MIN;
  std::int64_t tx_sum = 0;
  std::int64_t bytes_sum = 0;
  bool summarized = false;
};

}  // namespace

std::string MacroAuditReport::to_string() const {
  if (ok()) {
    return "macro-trace audit ok: " + std::to_string(page_views) +
           " page views, " + std::to_string(transmissions) +
           " transmissions over " + std::to_string(origins) + " origins";
  }
  std::string out = "macro-trace audit FAILED (" +
                    std::to_string(errors.size()) + " errors):";
  const std::size_t cap = errors.size() < 20 ? errors.size() : 20;
  for (std::size_t i = 0; i < cap; ++i) out += "\n  " + errors[i];
  if (cap < errors.size()) {
    out += "\n  ... " + std::to_string(errors.size() - cap) + " more";
  }
  return out;
}

MacroAuditReport audit_macro_trace(
    const std::vector<trace::Recorder::Event>& events,
    const std::vector<std::string>& track_names) {
  MacroAuditReport report;
  const auto fail = [&report](std::string what) {
    report.errors.push_back(std::move(what));
  };

  std::int64_t prev_arrival = INT64_MIN;
  std::map<int, OriginState> origins;  // key: track id

  for (std::size_t i = 0; i < events.size(); ++i) {
    const trace::Recorder::Event& e = events[i];
    if (e.layer != trace::Layer::Deploy) continue;

    if (e.name == "deploy.page_view") {
      report.page_views += 1;
      if (e.ts < prev_arrival) {
        fail("arrival order violated: page_view at " + std::to_string(e.ts) +
             "us emitted after one at " + std::to_string(prev_arrival) +
             "us (event " + std::to_string(i) + ")");
      }
      prev_arrival = e.ts;
      continue;
    }

    if (e.name == "deploy.origin_tx") {
      report.transmissions += 1;
      OriginState& o = origins[e.track];
      std::int64_t enqueue = 0, start = 0, tx = 0, bytes = 0;
      if (!arg_int(e.args_json, "enqueue_us", &enqueue) ||
          !arg_int(e.args_json, "start_us", &start) ||
          !arg_int(e.args_json, "tx_us", &tx) ||
          !arg_int(e.args_json, "bytes", &bytes)) {
        fail("origin_tx on " + name_of(track_names, e.track) +
             " missing enqueue_us/start_us/tx_us/bytes args (event " +
             std::to_string(i) + ")");
        continue;
      }
      const std::int64_t end = start + tx;
      if (o.count > 0) {
        if (enqueue < o.prev_enqueue) {
          fail("per-origin FIFO violated on " + name_of(track_names, e.track) +
               ": transmission enqueued at " + std::to_string(enqueue) +
               "us served after one enqueued at " +
               std::to_string(o.prev_enqueue) + "us");
        }
        const std::int64_t expected_start =
            enqueue > o.prev_end ? enqueue : o.prev_end;
        if (start != expected_start) {
          fail("per-origin FIFO violated on " + name_of(track_names, e.track) +
               ": transmission starts at " + std::to_string(start) +
               "us, expected max(enqueue " + std::to_string(enqueue) +
               "us, link free " + std::to_string(o.prev_end) + "us)");
        }
      } else if (start != enqueue) {
        fail("per-origin FIFO violated on " + name_of(track_names, e.track) +
             ": first transmission starts at " + std::to_string(start) +
             "us != its enqueue time " + std::to_string(enqueue) + "us");
      }
      o.count += 1;
      o.prev_enqueue = enqueue;
      o.prev_end = end;
      if (start < o.first_start) o.first_start = start;
      if (end > o.last_end) o.last_end = end;
      o.tx_sum += tx;
      o.bytes_sum += bytes;
      continue;
    }

    if (e.name == "deploy.link_summary") {
      OriginState& o = origins[e.track];
      o.summarized = true;
      std::int64_t busy = 0, bytes = 0, now = 0;
      if (!arg_int(e.args_json, "busy_us", &busy) ||
          !arg_int(e.args_json, "bytes", &bytes) ||
          !arg_int(e.args_json, "now_us", &now)) {
        fail("link_summary on " + name_of(track_names, e.track) +
             " missing busy_us/bytes/now_us args (event " +
             std::to_string(i) + ")");
        continue;
      }
      if (busy != o.tx_sum) {
        fail("utilization conservation violated on " +
             name_of(track_names, e.track) + ": link reports " +
             std::to_string(busy) + "us busy but transmissions sum to " +
             std::to_string(o.tx_sum) + "us");
      }
      if (bytes != o.bytes_sum) {
        fail("byte conservation violated on " + name_of(track_names, e.track) +
             ": link reports " + std::to_string(bytes) +
             " bytes but transmissions sum to " +
             std::to_string(o.bytes_sum));
      }
      if (busy > now && now > 0) {
        fail("utilization >100% on " + name_of(track_names, e.track) + ": " +
             std::to_string(busy) + "us busy in " + std::to_string(now) +
             "us elapsed");
      }
    }
  }

  for (const auto& [track, o] : origins) {
    if (o.count > 0) report.origins += 1;
    if (o.count > 0 && !o.summarized) {
      fail("origin " + name_of(track_names, track) +
           " has transmissions but no link_summary event");
    }
  }
  return report;
}

MacroAuditReport audit_macro_trace(const trace::Recorder& recorder) {
  std::vector<std::string> names;
  names.reserve(16);
  // Recorder exposes names by id; ids are dense [0, N). Probe until the
  // events run out of ids instead of relying on a count accessor.
  int max_track = -1;
  for (const trace::Recorder::Event& e : recorder.events()) {
    if (e.track > max_track) max_track = e.track;
  }
  for (int t = 0; t <= max_track; ++t) {
    names.push_back(recorder.track_name(t));
  }
  return audit_macro_trace(recorder.events(), names);
}

}  // namespace vroom::obs
