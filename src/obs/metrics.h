// Typed metrics registry (DESIGN.md §12): the quantitative self-view of a
// run, split into two planes.
//
//   * The *virtual* plane holds metrics whose values are a pure function of
//     the simulated world — deploy macro PLT distributions, front-end
//     cache hit counts, fleet job totals. Counters add, gauges take maxima,
//     and histograms bucket into *fixed* log-linear boundaries, so every
//     aggregation commutes and the exported text is byte-identical at any
//     VROOM_JOBS. Virtual-plane exports are part of a run's frozen output.
//
//   * The *wall* plane is the explicitly nondeterministic sidecar: job
//     wall-time distributions, worker counts. It exports to a separate file
//     (`wall_sidecar.prom`) that no byte-identity check ever covers.
//     (Phase-profile seconds stay in the printed VROOM_PROFILE table.)
//
// Metric names follow `layer.subsystem.name` (three or more lowercase
// dot-separated segments; enforced here and by scripts/check_metric_names.sh,
// which also rejects a name registered from two source sites). Handles
// returned by the registry are stable for the process lifetime — reset()
// zeroes values but never invalidates references, so instrumentation sites
// may cache `static obs::Counter&` safely.
//
// Recording is gated by a process-global switch (set_metrics_enabled,
// flipped from VROOM_METRICS by the fleet / benches): with it off,
// instrumentation sites skip their atomic writes and a run's observable
// behaviour is bit-for-bit unchanged. This library is environment-free;
// harness::Env owns the VROOM_METRICS knob.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace vroom::obs {

// Which export plane a metric belongs to (see file comment).
enum class Plane : std::uint8_t { Virtual, Wall };

// Process-global recording switch. Off by default: every record call is a
// single relaxed bool load away from free.
bool metrics_enabled();
void set_metrics_enabled(bool on);

// `layer.subsystem.name`: >= 3 dot-separated segments of [a-z0-9_]+.
bool valid_metric_name(std::string_view name);

// Monotonic counter. Relaxed atomic adds: sums commute, so totals are
// order- and worker-count-independent.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  void reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> value_{0};
};

// High-water gauge. Only the max-merge form is order-independent, so that
// is the only mutator: virtual-plane gauges stay deterministic across
// worker counts by construction.
class Gauge {
 public:
  void set_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  void reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> value_{0};
};

// Mergeable log-linear histogram over non-negative int64 values (negative
// records clamp to 0).
//
// Bucket boundaries are fixed by construction — HdrHistogram-style
// log-linear: values below kSubBuckets get exact unit buckets; above, each
// octave splits into kSubBuckets sub-buckets, so relative bucket width is
// <= 1/kSubBuckets (~3%). Fixed boundaries make merges plain bucket-count
// additions: order-independent, associative, and byte-identical however the
// records were sharded across workers.
class Histogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr std::int64_t kSubBuckets = std::int64_t{1} << kSubBits;
  // Max exponent for int64 inputs: index(v) for v = 2^62..2^63-1.
  static constexpr int kBucketCount =
      static_cast<int>(kSubBuckets) * (64 - kSubBits);

  // Bucket index for a value; total order preserving.
  static int bucket_index(std::int64_t v);
  // Inclusive lower / exclusive upper bound of a bucket.
  static std::int64_t bucket_lower(int index);
  static std::int64_t bucket_upper(int index);
  // Width of the bucket containing `v` — the resolution at that magnitude,
  // and the agreement tolerance between histogram and exact percentiles.
  static std::int64_t bucket_width_at(std::int64_t v) {
    const int i = bucket_index(v);
    return bucket_upper(i) - bucket_lower(i);
  }

  void record(std::int64_t v, std::int64_t count = 1);
  // Adds `other`'s buckets into this histogram (commutative, associative).
  void merge(const Histogram& other);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t bucket_count(int index) const {
    return buckets_[static_cast<std::size_t>(index)].load(
        std::memory_order_relaxed);
  }

  // Rank-interpolated percentile (p in [0,100]); mirrors
  // harness::percentile's rank convention, then interpolates uniformly
  // inside the landing bucket. Agrees with the exact sorted-values
  // percentile to within one bucket width at that magnitude. Returns 0 for
  // an empty histogram.
  double percentile(double p) const;

 private:
  friend class Registry;
  void reset();
  std::atomic<std::int64_t> buckets_[kBucketCount] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

// One registered metric, for enumeration/export.
struct MetricInfo {
  std::string name;
  Plane plane = Plane::Virtual;
  enum class Kind : std::uint8_t { Counter, Gauge, Histogram } kind =
      Kind::Counter;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

// Name-keyed typed registry. Get-or-create: the same site may re-register
// on every call (handles are cached with function-local statics anyway).
// Registering an existing name as a *different* kind or plane is a
// programmer error and aborts — silently aliasing two meanings of one name
// would poison every export downstream.
class Registry {
 public:
  Counter& counter(std::string_view name, Plane plane = Plane::Virtual);
  Gauge& gauge(std::string_view name, Plane plane = Plane::Virtual);
  Histogram& histogram(std::string_view name, Plane plane = Plane::Virtual);

  // Snapshot of registered metrics, name-sorted (export determinism).
  std::vector<MetricInfo> list(Plane plane) const;

  // `name,kind,count,sum,p50,p90,p99,p999,value` rows, name-sorted.
  std::string to_csv(Plane plane) const;
  // Prometheus-style text exposition ("vroom_" prefix, dots -> underscores;
  // histograms emit cumulative non-empty buckets + sum + count).
  std::string to_exposition(Plane plane) const;
  // FNV-1a digest of to_exposition(plane); recorded in run manifests so a
  // committed number can be matched to the exact metric snapshot behind it.
  std::uint64_t digest(Plane plane) const;

  // Writes <dir>/metrics.csv + <dir>/metrics.prom (virtual plane) and
  // <dir>/wall_sidecar.prom (wall plane), creating `dir` as needed.
  // Returns false and warns on stderr on I/O failure.
  bool export_to(const std::string& dir) const;

  // Zeroes every value. Handles stay valid: metrics are never deallocated.
  void reset();

 private:
  struct Entry {
    Plane plane;
    MetricInfo::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry_for(std::string_view name, Plane plane, MetricInfo::Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

// The process-global registry every instrumentation site records into.
Registry& registry();

}  // namespace vroom::obs
